(* Scratch diagnostic: Figure 10 / Table 1 shapes. *)
open Pnp_engine
open Pnp_harness

let () =
  let measure = Pnp_util.Units.ms 400.0 in
  let base =
    Config.v ~protocol:Config.Tcp ~side:Config.Recv ~checksum:true ~payload:4096 ~measure ()
  in
  let variants =
    [
      ("mutex   ", base);
      ("mcs     ", { base with Config.lock_disc = Lock.Fifo });
      ("assumed ", { base with Config.assume_in_order = true });
      ("mcs+tick", { base with Config.lock_disc = Lock.Fifo; ticketing = true });
      ("mcs+conn", { base with Config.lock_disc = Lock.Fifo; connections = 8 });
    ]
  in
  Printf.printf "%-9s" "variant";
  for p = 1 to 8 do
    Printf.printf "   p%d(Mb/s, ooo%%)" p
  done;
  print_newline ();
  List.iter
    (fun (label, cfg) ->
      Printf.printf "%-9s" label;
      for procs = 1 to 8 do
        let cfg = { cfg with Config.procs; connections = min cfg.Config.connections procs } in
        let r = Run.run cfg in
        Printf.printf "  %6.0f %5.1f" r.Run.throughput_mbps r.Run.ooo_pct
      done;
      print_newline ())
    variants
