bin/debug_send.mli:
