bin/debug_recv.mli:
