bin/debug_send.ml: Arch Array Costs Msg Option Platform Pnp_driver Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Sim Stack Sys Tcp Tcp_peer Units
