bin/calibrate.ml: Config List Pnp_harness Pnp_util Printf Run
