bin/calibrate.mli:
