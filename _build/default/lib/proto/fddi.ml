open Pnp_engine
open Pnp_xkern

let header_bytes = 21
let mtu = 4352

module Type_map = Xmap.Make (struct
  type t = int

  let hash x = x * 0x9e3779b1
  let equal = Int.equal
end)

type t = {
  plat : Platform.t;
  local_mac : int;
  obj_ref : Atomic_ctr.t; (* protocol object reference count (Section 5.2) *)
  mutable transmit : Msg.t -> unit;
  mutable tap : (dir:[ `Out | `In ] -> Msg.t -> unit) option;
  upper : (Msg.t -> unit) Type_map.t;
  mutable frames_out : int;
  mutable frames_in : int;
  mutable dropped : int;
}

let create plat ~local_mac ~name =
  {
    plat;
    local_mac;
    obj_ref = Platform.refcnt plat ~name:(name ^ ".ref") ~init:1;
    transmit = (fun _ -> failwith "Fddi: no driver attached");
    tap = None;
    upper = Type_map.create plat ~name:(name ^ ".demux") ();
    frames_out = 0;
    frames_in = 0;
    dropped = 0;
  }

let set_transmit t f = t.transmit <- f
let set_tap t f = t.tap <- Some f
let run_tap t ~dir msg = match t.tap with None -> () | Some f -> f ~dir msg

let register t ~ethertype handler = Type_map.insert t.upper ethertype handler

(* Frame layout: FC(1) dst(6) src(6) DSAP(1) SSAP(1) ctrl(1) OUI(3)
   ethertype(2).  MACs are 48-bit, carried here in an int. *)
let set_mac msg off mac =
  Msg.set_u16 msg off (mac lsr 32);
  Msg.set_u32 msg (off + 2) (mac land 0xffffffff)

let get_mac msg off = (Msg.get_u16 msg off lsl 32) lor Msg.get_u32 msg (off + 2)

let fc_llc = 0x50
let dsap_snap = 0xaa

let encap msg ~src_mac ~dst_mac ~ethertype =
  Msg.push msg header_bytes;
  Msg.set_u8 msg 0 fc_llc;
  set_mac msg 1 dst_mac;
  set_mac msg 7 src_mac;
  Msg.set_u8 msg 13 dsap_snap;
  Msg.set_u8 msg 14 dsap_snap;
  Msg.set_u8 msg 15 0x03;
  Msg.set_u8 msg 16 0;
  Msg.set_u16 msg 17 0;
  Msg.set_u16 msg 19 ethertype

let output t ~ethertype ~dst_mac msg =
  if Msg.length msg > mtu then
    invalid_arg
      (Printf.sprintf "Fddi.output: payload %d exceeds MTU %d" (Msg.length msg) mtu);
  Costs.charge t.plat Costs.fddi_output;
  encap msg ~src_mac:t.local_mac ~dst_mac ~ethertype;
  t.frames_out <- t.frames_out + 1;
  run_tap t ~dir:`Out msg;
  t.transmit msg

let input t msg =
  run_tap t ~dir:`In msg;
  Costs.charge t.plat Costs.fddi_input;
  if Msg.length msg < header_bytes then begin
    t.dropped <- t.dropped + 1;
    Msg.destroy msg
  end
  else begin
    let ethertype = Msg.get_u16 msg 19 in
    ignore (get_mac msg 1);
    Msg.pop msg header_bytes;
    t.frames_in <- t.frames_in + 1;
    match Type_map.lookup t.upper ethertype with
    | Some handler ->
      (* The x-kernel pins objects across the upcall with reference
         counts: two counter operations per layer on the fast path. *)
      ignore (Atomic_ctr.incr t.obj_ref);
      handler msg;
      ignore (Atomic_ctr.decr t.obj_ref)
    | None ->
      t.dropped <- t.dropped + 1;
      Msg.destroy msg
  end

let frames_out t = t.frames_out
let frames_in t = t.frames_in
let frames_dropped t = t.dropped
