(** 32-bit TCP sequence-number arithmetic (wraparound-safe). *)

val mask : int -> int
(** Reduce to 32 bits. *)

val add : int -> int -> int
(** [add seq n] modulo 2^32. *)

val diff : int -> int -> int
(** [diff a b] is the signed distance from [b] to [a]; positive when [a]
    is ahead of [b] in sequence space. *)

val lt : int -> int -> bool
val leq : int -> int -> bool
val gt : int -> int -> bool
val geq : int -> int -> bool

val max : int -> int -> int
(** The later of two sequence numbers. *)
