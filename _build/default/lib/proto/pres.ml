open Pnp_engine
open Pnp_xkern

(* The Challenge checksums at 32 MB/s = ~31 ns/byte; presentation
   conversion reads, transforms and writes, at roughly 3x that. *)
let conversion_ns_per_byte = 95.0

let convert plat pool msg =
  let len = Msg.length msg in
  let out = Msg.create pool len in
  (* Real work: copy with each aligned 32-bit word byte-swapped. *)
  let buf = Bytes.create len in
  Msg.blit_to_bytes msg buf;
  let words = len / 4 in
  for w = 0 to words - 1 do
    let base = 4 * w in
    let b0 = Bytes.get buf base
    and b1 = Bytes.get buf (base + 1)
    and b2 = Bytes.get buf (base + 2)
    and b3 = Bytes.get buf (base + 3) in
    Bytes.set buf base b3;
    Bytes.set buf (base + 1) b2;
    Bytes.set buf (base + 2) b1;
    Bytes.set buf (base + 3) b0
  done;
  for i = 0 to len - 1 do
    Msg.set_u8 out i (Char.code (Bytes.get buf i))
  done;
  Msg.destroy msg;
  Platform.charge plat (int_of_float (float_of_int len *. conversion_ns_per_byte));
  out

let encode = convert
let decode = convert
