(** UDP: connectionless multiplexing and demultiplexing over IP.

    Like FDDI, locking is required only for session creation and for the
    demux map (Section 2.2).  The checksum (over pseudo-header + payload)
    is optional, as in the experiments. *)

type t

type session

val header_bytes : int
val protocol_number : int

val create : Pnp_engine.Platform.t -> ip:Ip.t -> checksum:bool -> name:string -> t

val open_session :
  t ->
  local_port:int ->
  remote_addr:int ->
  remote_port:int ->
  recv:(Pnp_xkern.Msg.t -> unit) ->
  session
(** Bind a port and install the receive upcall.  The upcall owns the
    message (and must eventually destroy it). *)

val close_session : t -> session -> unit

val send : session -> Pnp_xkern.Msg.t -> unit
(** Prepend the UDP header and send to the session's remote endpoint. *)

val datagrams_out : t -> int
val datagrams_in : t -> int
val datagrams_dropped : t -> int
(** No bound port, short header, or failed checksum. *)

val checksum_failures : t -> int

val encap_free :
  Pnp_xkern.Msg.t ->
  src:int ->
  dst:int ->
  sport:int ->
  dport:int ->
  checksum:bool ->
  unit
(** Prepend a UDP header (with a valid checksum when asked) at no simulated
    cost — for driver-built packet templates (Section 2.3: the drivers use
    preconstructed templates and do not compute checksums at run time). *)
