(** A presentation layer: XDR-style marshalling.

    Section 3.2 compares its checksumming results with Goldberg et al.,
    whose workloads included presentation-layer conversion — "much more
    compute-bound and data-intensive than checksumming" — and notes that
    heavier per-byte processing outside the locks yields better speedup.
    This layer lets the harness reproduce that comparison: a real
    byte-reordering pass (32-bit host/network swaps) over the payload,
    charged at a compute-bound per-byte cost.

    Conversion allocates a fresh message (marshalling into application
    buffers), so shared driver-template nodes are never mutated. *)

val encode : Pnp_engine.Platform.t -> Pnp_xkern.Mpool.t -> Pnp_xkern.Msg.t -> Pnp_xkern.Msg.t
(** Marshal: byte-swap each 32-bit word into a new message; consumes the
    input.  Charges the per-byte conversion cost. *)

val decode : Pnp_engine.Platform.t -> Pnp_xkern.Mpool.t -> Pnp_xkern.Msg.t -> Pnp_xkern.Msg.t
(** Unmarshal (the same involution). *)

val conversion_ns_per_byte : float
(** The compute cost per byte (about 3x the checksum's read cost, per the
    "much more compute-bound" description). *)
