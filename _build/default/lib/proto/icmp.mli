(** ICMP echo (ping).

    The x-kernel's IP suite carried ICMP alongside UDP and TCP; this
    implements the echo service: requests are answered in place (by the
    receiving thread, like every other upcall), and outstanding pings are
    matched to replies by (identifier, sequence) through the map manager,
    yielding round-trip times in simulated nanoseconds. *)

type t

val protocol_number : int
val header_bytes : int

val create : Pnp_engine.Platform.t -> Pnp_xkern.Mpool.t -> ip:Ip.t -> name:string -> t
(** Registers with IP; inbound echo requests are answered automatically. *)

val ping :
  t ->
  dst:int ->
  ident:int ->
  seq:int ->
  ?payload:int ->
  on_reply:(rtt_ns:int -> unit) ->
  unit ->
  unit
(** Send an echo request.  [on_reply] fires (on the thread that processes
    the reply) with the measured round-trip time.  [payload] bytes of
    pattern data are carried and verified on return. *)

val requests_sent : t -> int
val replies_sent : t -> int
val replies_received : t -> int
val bad_replies : t -> int
(** Replies whose checksum or payload failed verification. *)
