lib/proto/ip.ml: Arch Atomic_ctr Costs Fddi Inet_cksum Int List Lock Membus Mpool Msg Platform Pnp_engine Pnp_util Pnp_xkern Sim Timewheel Xmap
