lib/proto/fddi.mli: Pnp_engine Pnp_xkern
