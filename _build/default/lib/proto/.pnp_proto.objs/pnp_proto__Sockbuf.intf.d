lib/proto/sockbuf.mli: Pnp_xkern
