lib/proto/pres.mli: Pnp_engine Pnp_xkern
