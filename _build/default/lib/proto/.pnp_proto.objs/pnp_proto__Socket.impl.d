lib/proto/socket.ml: Buffer Mpool Msg Platform Pnp_engine Pnp_xkern Queue Sim String Tcp
