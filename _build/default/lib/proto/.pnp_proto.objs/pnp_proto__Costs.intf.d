lib/proto/costs.mli: Pnp_engine Pnp_xkern
