lib/proto/tcp_seq.mli:
