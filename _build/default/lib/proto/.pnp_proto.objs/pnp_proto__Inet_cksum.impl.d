lib/proto/inet_cksum.ml: Bytes Char Membus Msg Platform Pnp_engine Pnp_xkern Sim
