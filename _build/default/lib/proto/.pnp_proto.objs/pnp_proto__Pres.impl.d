lib/proto/pres.ml: Bytes Char Msg Platform Pnp_engine Pnp_xkern
