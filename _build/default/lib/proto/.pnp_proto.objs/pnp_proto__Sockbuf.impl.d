lib/proto/sockbuf.ml: List Mpool Msg Pnp_xkern
