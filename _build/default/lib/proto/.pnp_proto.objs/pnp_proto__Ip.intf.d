lib/proto/ip.mli: Fddi Pnp_engine Pnp_xkern
