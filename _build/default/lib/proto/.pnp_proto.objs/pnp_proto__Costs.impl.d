lib/proto/costs.ml: Arch Membus Msg Platform Pnp_engine Pnp_xkern Sim
