lib/proto/tcp.mli: Ip Pnp_engine Pnp_util Pnp_xkern
