lib/proto/udp.ml: Atomic_ctr Costs Inet_cksum Int Ip Lock Msg Platform Pnp_engine Pnp_xkern Printf Sim Xmap
