lib/proto/tcp_seq.ml:
