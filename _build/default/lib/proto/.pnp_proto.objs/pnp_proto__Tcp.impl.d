lib/proto/tcp.ml: Atomic_ctr Costs Gate Ip List Lock Membus Mpool Msg Platform Pnp_engine Pnp_util Pnp_xkern Printf Sim Sockbuf Tcp_seq Tcp_wire Timewheel Xmap
