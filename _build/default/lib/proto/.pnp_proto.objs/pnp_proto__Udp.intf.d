lib/proto/udp.mli: Ip Pnp_engine Pnp_xkern
