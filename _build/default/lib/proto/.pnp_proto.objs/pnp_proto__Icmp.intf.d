lib/proto/icmp.mli: Ip Pnp_engine Pnp_xkern
