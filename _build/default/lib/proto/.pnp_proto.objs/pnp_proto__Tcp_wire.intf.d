lib/proto/tcp_wire.mli: Pnp_engine Pnp_xkern
