lib/proto/icmp.ml: Costs Inet_cksum Ip Mpool Msg Platform Pnp_engine Pnp_xkern Sim Xmap
