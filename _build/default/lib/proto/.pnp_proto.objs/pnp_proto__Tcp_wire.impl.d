lib/proto/tcp_wire.ml: Buffer Inet_cksum Msg Pnp_xkern Tcp_seq
