lib/proto/fddi.ml: Atomic_ctr Costs Int Msg Platform Pnp_engine Pnp_xkern Printf Xmap
