lib/proto/socket.mli: Pnp_engine Pnp_xkern Tcp
