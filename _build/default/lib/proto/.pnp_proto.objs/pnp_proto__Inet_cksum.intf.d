lib/proto/inet_cksum.mli: Bytes Pnp_engine Pnp_xkern
