(** Send socket buffer.

    Holds the unacknowledged byte stream, exactly as in BSD: data stays in
    the buffer until acknowledged, and retransmission re-reads it from the
    front — this is the "retransmission queue" of the paper.  Reads share
    the underlying MNodes (no copies). *)

type t

val create : Pnp_xkern.Mpool.t -> max:int -> t

val cc : t -> int
(** Bytes currently buffered. *)

val space : t -> int
(** Bytes that may still be appended. *)

val max_size : t -> int

val append : t -> Pnp_xkern.Msg.t -> unit
(** Take ownership of the message's bytes at the tail.
    @raise Invalid_argument if it does not fit. *)

val peek : t -> off:int -> len:int -> Pnp_xkern.Msg.t
(** A new message viewing bytes [off, off+len) of the buffered stream
    (reference counts bumped, nothing copied).
    @raise Invalid_argument when out of range. *)

val drop : t -> int -> unit
(** Discard acknowledged bytes from the front. *)

val clear : t -> unit
