(** FDDI media-access layer.

    As in the paper (Section 2.2), FDDI is thin: it prepends and strips a
    frame header and demultiplexes incoming frames to the upper protocol by
    SNAP ethertype.  Locking is needed only for registration (session
    creation) and for the demux map; the outgoing data path takes no
    locks. *)

type t

val header_bytes : int
(** Frame header: FC (1) + destination (6) + source (6) + LLC (3) +
    SNAP (5) = 21 bytes. *)

val mtu : int
(** Maximum payload carried in one frame (4352 bytes, the FDDI MTU). *)

val create : Pnp_engine.Platform.t -> local_mac:int -> name:string -> t

val set_transmit : t -> (Pnp_xkern.Msg.t -> unit) -> unit
(** Connect the layer to its device driver. *)

val register : t -> ethertype:int -> (Pnp_xkern.Msg.t -> unit) -> unit
(** Install the upper-layer input handler for an ethertype. *)

val output : t -> ethertype:int -> dst_mac:int -> Pnp_xkern.Msg.t -> unit
(** Prepend the frame header and hand the frame to the driver.
    @raise Invalid_argument if the payload exceeds {!mtu}. *)

val input : t -> Pnp_xkern.Msg.t -> unit
(** Entry point for the driver: strip the header, demultiplex. *)

val encap : Pnp_xkern.Msg.t -> src_mac:int -> dst_mac:int -> ethertype:int -> unit
(** Prepend a frame header without going through a layer instance — used
    by the in-memory drivers to fabricate inbound frames. *)

val set_tap : t -> (dir:[ `Out | `In ] -> Pnp_xkern.Msg.t -> unit) -> unit
(** Install a promiscuous tap: called with every frame transmitted
    ([`Out], after the header is prepended) and every frame arriving from
    the driver ([`In], before demultiplexing).  The tap must not consume
    or retain the message.  Costs nothing in simulated time. *)

val frames_out : t -> int
val frames_in : t -> int
val frames_dropped : t -> int
(** Frames discarded for bad ethertype or malformed header. *)
