open Pnp_xkern

type flags = { fin : bool; syn : bool; rst : bool; psh : bool; ack : bool }

let no_flags = { fin = false; syn = false; rst = false; psh = false; ack = false }
let flag_ack = { no_flags with ack = true }
let flag_syn = { no_flags with syn = true }
let flag_syn_ack = { no_flags with syn = true; ack = true }
let flag_fin_ack = { no_flags with fin = true; ack = true }
let flag_rst = { no_flags with rst = true }

type header = {
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : flags;
  win : int;
  cksum : int;
}

let header_bytes = 24
let protocol_number = 6

let flags_to_int f =
  (if f.fin then 1 else 0)
  lor (if f.syn then 2 else 0)
  lor (if f.rst then 4 else 0)
  lor (if f.psh then 8 else 0)
  lor if f.ack then 16 else 0

let flags_of_int i =
  {
    fin = i land 1 <> 0;
    syn = i land 2 <> 0;
    rst = i land 4 <> 0;
    psh = i land 8 <> 0;
    ack = i land 16 <> 0;
  }

let encode msg h =
  Msg.push msg header_bytes;
  Msg.set_u16 msg 0 h.sport;
  Msg.set_u16 msg 2 h.dport;
  Msg.set_u32 msg 4 (Tcp_seq.mask h.seq);
  Msg.set_u32 msg 8 (Tcp_seq.mask h.ack);
  (* data offset in 32-bit words (6) in the high nibble, flags low. *)
  Msg.set_u16 msg 12 ((6 lsl 12) lor flags_to_int h.flags);
  Msg.set_u32 msg 14 h.win;
  Msg.set_u16 msg 18 h.cksum;
  Msg.set_u16 msg 20 0;
  Msg.set_u16 msg 22 0

let decode msg =
  if Msg.length msg < header_bytes then None
  else
    Some
      {
        sport = Msg.get_u16 msg 0;
        dport = Msg.get_u16 msg 2;
        seq = Msg.get_u32 msg 4;
        ack = Msg.get_u32 msg 8;
        flags = flags_of_int (Msg.get_u16 msg 12 land 0x3f);
        win = Msg.get_u32 msg 14;
        cksum = Msg.get_u16 msg 18;
      }

let strip msg = Msg.pop msg header_bytes

let pseudo_sum ~src ~dst ~len =
  let open Inet_cksum in
  let s = add (src lsr 16) (src land 0xffff) in
  let s = add s (dst lsr 16) in
  let s = add s (dst land 0xffff) in
  let s = add s protocol_number in
  add s len

let store_checksum plat ~src ~dst msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let ck = Inet_cksum.compute plat msg ~extra:(pseudo_sum ~src ~dst ~len) in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

let store_checksum_free ~src ~dst msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let sum = Inet_cksum.add (Inet_cksum.sum_slices msg) (pseudo_sum ~src ~dst ~len) in
  let ck = Inet_cksum.finish sum in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

let store_checksum_incremental ~src ~dst ~payload_sum msg =
  let len = Msg.length msg in
  Msg.set_u16 msg 18 0;
  let hdr_sum = ref 0 in
  for i = 0 to (header_bytes / 2) - 1 do
    hdr_sum := Inet_cksum.add !hdr_sum (Msg.get_u16 msg (2 * i))
  done;
  let total = Inet_cksum.add (Inet_cksum.add !hdr_sum payload_sum) (pseudo_sum ~src ~dst ~len) in
  let ck = Inet_cksum.finish total in
  Msg.set_u16 msg 18 (if ck = 0 then 0xffff else ck)

let verify_checksum plat ~src ~dst msg =
  let len = Msg.length msg in
  Inet_cksum.verify plat msg ~extra:(pseudo_sum ~src ~dst ~len)

let flags_to_string f =
  let b = Buffer.create 5 in
  if f.syn then Buffer.add_char b 'S';
  if f.fin then Buffer.add_char b 'F';
  if f.rst then Buffer.add_char b 'R';
  if f.psh then Buffer.add_char b 'P';
  if f.ack then Buffer.add_char b 'A';
  if Buffer.length b = 0 then "-" else Buffer.contents b
