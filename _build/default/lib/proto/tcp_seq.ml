let modulus = 1 lsl 32

let mask x = x land (modulus - 1)

let add a n = mask (a + n)

let diff a b =
  let d = mask (a - b) in
  if d >= modulus / 2 then d - modulus else d

let lt a b = diff a b < 0
let leq a b = diff a b <= 0
let gt a b = diff a b > 0
let geq a b = diff a b >= 0

let max a b = if geq a b then a else b
