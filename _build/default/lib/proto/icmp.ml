open Pnp_engine
open Pnp_xkern

let protocol_number = 1
let header_bytes = 8 (* type(1) code(1) cksum(2) ident(2) seq(2) *)

let type_echo_reply = 0
let type_echo_request = 8

module Pending_key = struct
  type t = { ident : int; seq : int }

  let hash k = (k.ident * 65521) lxor (k.seq * 257)
  let equal a b = a.ident = b.ident && a.seq = b.seq
end

module Pending_map = Xmap.Make (Pending_key)

type pending = { sent_at : int; payload_len : int; on_reply : rtt_ns:int -> unit }

type t = {
  plat : Platform.t;
  pool : Mpool.t;
  ip : Ip.t;
  pending : pending Pending_map.t;
  mutable requests_sent : int;
  mutable replies_sent : int;
  mutable replies_received : int;
  mutable bad : int;
}

let set_checksum msg =
  Msg.set_u16 msg 2 0;
  Msg.set_u16 msg 2 (Inet_cksum.finish (Inet_cksum.sum_slices msg))

let checksum_ok msg = Inet_cksum.add (Inet_cksum.sum_slices msg) 0 = 0xffff

let build ~ty ~ident ~seq payload =
  Msg.push payload header_bytes;
  Msg.set_u8 payload 0 ty;
  Msg.set_u8 payload 1 0;
  Msg.set_u16 payload 4 ident;
  Msg.set_u16 payload 6 seq;
  set_checksum payload;
  payload

let input t ~src ~dst:_ msg =
  Costs.charge t.plat Costs.udp_input (* comparable path length *);
  if Msg.length msg < header_bytes || not (checksum_ok msg) then begin
    t.bad <- t.bad + 1;
    Msg.destroy msg
  end
  else begin
    let ty = Msg.get_u8 msg 0 in
    let ident = Msg.get_u16 msg 4 in
    let seq = Msg.get_u16 msg 6 in
    if ty = type_echo_request then begin
      (* Echo: flip the type, recompute, send it straight back. *)
      Msg.set_u8 msg 0 type_echo_reply;
      set_checksum msg;
      t.replies_sent <- t.replies_sent + 1;
      Ip.output t.ip ~proto:protocol_number ~dst:src msg
    end
    else if ty = type_echo_reply then begin
      let key = { Pending_key.ident; seq } in
      match Pending_map.lookup t.pending key with
      | None ->
        t.bad <- t.bad + 1;
        Msg.destroy msg
      | Some p ->
        ignore (Pending_map.remove t.pending key);
        let payload_ok =
          Msg.length msg = header_bytes + p.payload_len
          && Msg.check_pattern msg ~off:header_bytes ~len:p.payload_len ~stream_off:seq
        in
        Msg.destroy msg;
        if payload_ok then begin
          t.replies_received <- t.replies_received + 1;
          p.on_reply ~rtt_ns:(Sim.now t.plat.Platform.sim - p.sent_at)
        end
        else t.bad <- t.bad + 1
    end
    else begin
      t.bad <- t.bad + 1;
      Msg.destroy msg
    end
  end

let create plat pool ~ip ~name =
  let t =
    {
      plat;
      pool;
      ip;
      pending = Pending_map.create plat ~name:(name ^ ".pending") ();
      requests_sent = 0;
      replies_sent = 0;
      replies_received = 0;
      bad = 0;
    }
  in
  Ip.register ip ~proto:protocol_number (fun ~src ~dst msg -> input t ~src ~dst msg);
  t

let ping t ~dst ~ident ~seq ?(payload = 56) ~on_reply () =
  let m = Msg.create t.pool payload in
  Msg.fill_pattern m ~off:0 ~len:payload ~stream_off:seq;
  let m = build ~ty:type_echo_request ~ident ~seq m in
  Pending_map.insert t.pending
    { Pending_key.ident; seq }
    { sent_at = Sim.now t.plat.Platform.sim; payload_len = payload; on_reply };
  t.requests_sent <- t.requests_sent + 1;
  Costs.charge t.plat Costs.udp_output;
  Ip.output t.ip ~proto:protocol_number ~dst m

let requests_sent t = t.requests_sent
let replies_sent t = t.replies_sent
let replies_received t = t.replies_received
let bad_replies t = t.bad
