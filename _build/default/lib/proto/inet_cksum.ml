open Pnp_engine
open Pnp_xkern

let fold s =
  let s = (s land 0xffff) + (s lsr 16) in
  (s land 0xffff) + (s lsr 16)

let add a b = fold (a + b)

let sum_bytes b off len =
  let s = ref 0 in
  let i = ref off in
  let stop = off + len - 1 in
  while !i < stop do
    s := !s + (Char.code (Bytes.unsafe_get b !i) lsl 8) + Char.code (Bytes.unsafe_get b (!i + 1));
    i := !i + 2
  done;
  if !i = stop then s := !s + (Char.code (Bytes.unsafe_get b !i) lsl 8);
  fold !s

(* Summing a multi-slice message must respect byte positions: a slice of
   odd length shifts the parity of every following byte.  We track the
   global offset and add odd-positioned slices byte-swapped, the standard
   technique for scattered data. *)
let sum_slices msg =
  let total = ref 0 in
  let pos = ref 0 in
  Msg.iter_slices msg (fun b off len ->
      let s = sum_bytes b off len in
      let s = if !pos land 1 = 0 then s else ((s land 0xff) lsl 8) lor (s lsr 8) in
      total := add !total s;
      pos := !pos + len);
  !total

let finish s = lnot (fold s) land 0xffff

let charge plat msg =
  if Sim.in_thread plat.Platform.sim then
    Membus.consume plat.Platform.bus ~bytes:(Msg.length msg)

let compute plat msg ~extra =
  charge plat msg;
  finish (add (sum_slices msg) extra)

let verify plat msg ~extra =
  charge plat msg;
  fold (add (sum_slices msg) extra) = 0xffff
