lib/figures/fig_multiconn.mli: Opts Pnp_harness
