lib/figures/fig_micro.mli: Opts
