lib/figures/fig_atomics.ml: Atomic_ctr Config Opts Pnp_engine Pnp_harness Report
