lib/figures/fig_baseline.mli: Opts Pnp_harness
