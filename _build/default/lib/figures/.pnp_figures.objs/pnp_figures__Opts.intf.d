lib/figures/opts.mli: Pnp_harness Pnp_util
