lib/figures/fig_caching.mli: Opts Pnp_harness
