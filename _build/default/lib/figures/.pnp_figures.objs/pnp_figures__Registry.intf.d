lib/figures/registry.mli: Opts
