lib/figures/registry.ml: Fig_archcmp Fig_atomics Fig_baseline Fig_caching Fig_extensions Fig_locking Fig_micro Fig_multiconn Fig_ordering List Opts Printf
