lib/figures/fig_caching.ml: Config Opts Pnp_harness Report
