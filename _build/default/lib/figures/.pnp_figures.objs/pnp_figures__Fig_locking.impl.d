lib/figures/fig_locking.ml: Config List Lock Opts Pnp_engine Pnp_harness Pnp_proto Report Tcp
