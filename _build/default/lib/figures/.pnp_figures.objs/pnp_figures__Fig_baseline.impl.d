lib/figures/fig_baseline.ml: Config List Opts Pnp_harness Printf Report
