lib/figures/fig_ordering.ml: Config Lock Opts Pnp_engine Pnp_harness Report Run
