lib/figures/fig_micro.ml: Arch Config List Membus Opts Platform Pnp_engine Pnp_harness Pnp_util Printf Run Sim Stats Units
