lib/figures/fig_archcmp.mli: Opts Pnp_harness
