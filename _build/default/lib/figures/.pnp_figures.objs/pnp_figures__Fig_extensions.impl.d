lib/figures/fig_extensions.ml: Arch Config List Lock Opts Pnp_engine Pnp_harness Pnp_util Printf Report Run Stats
