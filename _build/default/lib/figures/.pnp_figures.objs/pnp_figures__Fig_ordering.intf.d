lib/figures/fig_ordering.mli: Opts Pnp_harness
