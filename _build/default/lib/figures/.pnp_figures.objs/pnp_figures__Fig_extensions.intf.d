lib/figures/fig_extensions.mli: Opts
