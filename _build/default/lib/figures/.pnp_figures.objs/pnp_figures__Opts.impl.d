lib/figures/opts.ml: List Pnp_harness Pnp_util Units
