lib/figures/fig_multiconn.ml: Config Lock Opts Pnp_engine Pnp_harness Report
