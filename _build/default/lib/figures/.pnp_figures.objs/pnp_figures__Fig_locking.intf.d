lib/figures/fig_locking.mli: Opts Pnp_harness
