lib/figures/fig_atomics.mli: Opts Pnp_harness
