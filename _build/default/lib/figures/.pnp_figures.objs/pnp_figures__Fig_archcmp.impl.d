lib/figures/fig_archcmp.ml: Arch Config List Opts Pnp_engine Pnp_harness Printf Report
