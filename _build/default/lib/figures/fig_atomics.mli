(** Figure 15: LL/SC atomic increment/decrement vs lock-increment-unlock
    for reference counts (Section 5.2). *)

val data : Opts.t -> Pnp_harness.Report.series list
val fig15 : Opts.t -> unit
