(** Beyond the paper: the Section 8 future-work experiment and ablations
    of the model's design choices (DESIGN.md section 7).

    - {!clp_vs_plp}: connection-level parallelism (connections statically
      bound to processors — no state-lock contention, but load imbalance)
      against packet-level parallelism over the same many-connection
      workload, as a function of how skewed the per-connection load is.
    - {!grant_policy}: out-of-order rates under three lock-grant
      disciplines — random (IRIX mutex), barging (LIFO test-and-set) and
      FIFO (MCS).
    - {!coherency}: the receive-side curve as the cache-line migration
      penalty is varied — the knob that separates the Challenge from the
      synchronisation-bus Power Series.
    - {!jitter}: Table 1's MCS column as a function of driver service
      jitter, the source of pre-lock misordering.
    - {!cksum_placement}: TCP-1 with checksums inside vs outside the
      connection-state lock (what Section 5.1's restructuring bought). *)

val clp_vs_plp_data : Opts.t -> (float * float * float) list
(** (skew, packet-level Mbit/s, connection-level Mbit/s) at [max_procs]. *)

val clp_vs_plp : Opts.t -> unit
val grant_policy : Opts.t -> unit
val coherency : Opts.t -> unit
val jitter : Opts.t -> unit
val cksum_placement : Opts.t -> unit

val presentation : Opts.t -> unit
(** Speedup with an added compute-bound presentation-conversion pass per
    packet — the Goldberg et al. contrast of Section 3.2. *)
