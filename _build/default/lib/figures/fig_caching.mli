(** Figure 16: per-thread message (MNode) caching in the message tool
    (Section 6). *)

val data : Opts.t -> Pnp_harness.Report.series list
val fig16 : Opts.t -> unit
