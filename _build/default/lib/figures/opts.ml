open Pnp_util

type t = { max_procs : int; seeds : int; warmup : Units.ns; measure : Units.ns }

let default = { max_procs = 8; seeds = 3; warmup = Units.ms 200.0; measure = Units.ms 500.0 }
let quick = { default with seeds = 2; measure = Units.ms 250.0 }

let procs t = List.init t.max_procs (fun i -> i + 1)

let apply t cfg =
  { cfg with Pnp_harness.Config.warmup = t.warmup; measure = t.measure }
