(** Sweep options shared by all figure generators. *)

type t = {
  max_procs : int;              (** sweep 1..max_procs (capped per machine) *)
  seeds : int;                  (** runs averaged per data point *)
  warmup : Pnp_util.Units.ns;
  measure : Pnp_util.Units.ns;
}

val default : t
(** 8 processors, 3 seeds, 200 ms + 500 ms — a full sweep in minutes. *)

val quick : t
(** 2 seeds, 250 ms measurement — for smoke tests. *)

val procs : t -> int list
(** [1; 2; ...; max_procs]. *)

val apply : t -> Pnp_harness.Config.t -> Pnp_harness.Config.t
(** Overwrite the config's warmup/measure with the sweep's. *)
