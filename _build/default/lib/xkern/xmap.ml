open Pnp_engine

module type KEY = sig
  type t

  val hash : t -> int
  val equal : t -> t -> bool
end

(* Instruction budgets for the simulated cost of a map operation.  These
   are 1994 path lengths: hashing, key comparison and chain chasing on a
   machine where most of it misses the cache — large enough that locking
   the maps on the demultiplexing path costs measurable throughput
   (Section 3.1 reports ~10%% at 8 CPUs). *)
let cache_probe_instrs = 45
let hash_instrs = 70
let link_instrs = 25 (* per chain element examined *)

module Make (K : KEY) = struct
  type 'v t = {
    plat : Platform.t;
    lock : Lock.Counting.t;
    buckets : (K.t * 'v) list array;
    mutable one_behind : (K.t * 'v) option;
    mutable size : int;
    mutable lookups : int;
    mutable cache_hits : int;
  }

  let create plat ?(buckets = 32) ~name () =
    if buckets <= 0 then invalid_arg "Xmap.create: buckets must be positive";
    {
      plat;
      lock =
        Lock.Counting.create plat.Platform.sim plat.Platform.arch
          plat.Platform.map_disc ~name;
      buckets = Array.make buckets [];
      one_behind = None;
      size = 0;
      lookups = 0;
      cache_hits = 0;
    }

  let locked t f =
    if Sim.in_thread t.plat.Platform.sim then Lock.Counting.with_lock t.lock f
    else f ()

  (* lookup serialisation is what the Section 3.1 aside toggles off. *)
  let lookup_locked t f =
    if t.plat.Platform.map_locking then locked t f else f ()

  let index t k = (K.hash k land max_int) mod Array.length t.buckets

  let insert t k v =
    locked t (fun () ->
        Platform.charge_instrs t.plat hash_instrs;
        let i = index t k in
        let chain = List.filter (fun (k', _) -> not (K.equal k k')) t.buckets.(i) in
        if List.length chain <> List.length t.buckets.(i) then t.size <- t.size - 1;
        t.buckets.(i) <- (k, v) :: chain;
        t.size <- t.size + 1;
        t.one_behind <- Some (k, v))

  let chain_find t k =
    let i = index t k in
    let rec walk pos = function
      | [] ->
        Platform.charge_instrs t.plat (hash_instrs + (link_instrs * pos));
        None
      | (k', v) :: rest ->
        if K.equal k k' then begin
          Platform.charge_instrs t.plat (hash_instrs + (link_instrs * (pos + 1)));
          Some (k', v)
        end
        else walk (pos + 1) rest
    in
    walk 0 t.buckets.(i)

  let lookup t k =
    lookup_locked t (fun () ->
        t.lookups <- t.lookups + 1;
        Platform.charge_instrs t.plat cache_probe_instrs;
        match t.one_behind with
        | Some (k', v) when K.equal k k' ->
          t.cache_hits <- t.cache_hits + 1;
          Some v
        | _ -> (
          match chain_find t k with
          | Some ((_, v) as binding) ->
            t.one_behind <- Some binding;
            Some v
          | None -> None))

  let remove t k =
    locked t (fun () ->
        Platform.charge_instrs t.plat hash_instrs;
        let i = index t k in
        let before = List.length t.buckets.(i) in
        t.buckets.(i) <- List.filter (fun (k', _) -> not (K.equal k k')) t.buckets.(i);
        let removed = List.length t.buckets.(i) <> before in
        if removed then begin
          t.size <- t.size - 1;
          match t.one_behind with
          | Some (k', _) when K.equal k k' -> t.one_behind <- None
          | _ -> ()
        end;
        removed)

  let iter t f =
    locked t (fun () ->
        Array.iter
          (fun chain ->
            List.iter
              (fun (k, v) ->
                Platform.charge_instrs t.plat link_instrs;
                f k v)
              chain)
          t.buckets)

  let length t = t.size
  let lookups t = t.lookups
  let cache_hits t = t.cache_hits
end
