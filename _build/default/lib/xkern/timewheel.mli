(** The x-kernel event manager: a timing wheel (Varghese & Lauck).

    The wheel is a chained-bucket hash table keyed by firing time.  As in
    the paper (Section 2.1), each chain has its own lock so that concurrent
    schedule/cancel operations on different slots do not conflict.

    Expired chains are serviced by short-lived simulated worker threads so
    that timer callbacks (e.g. TCP retransmission) run in a context that
    may take protocol locks. *)

type t

type handle
(** A scheduled event, usable with {!cancel}. *)

val create :
  Pnp_engine.Platform.t ->
  ?slot_ns:Pnp_util.Units.ns ->
  ?slots:int ->
  ?cpu:int ->
  name:string ->
  unit ->
  t
(** Default granularity is 10 ms with 128 slots (BSD's slow-timeout scale);
    [cpu] is the processor charged with servicing expirations. *)

val schedule : t -> after:Pnp_util.Units.ns -> (unit -> unit) -> handle
(** Schedule a callback at least [after] from now (rounded up to the next
    wheel tick). *)

val cancel : t -> handle -> bool
(** Returns [false] if the event already fired or was already cancelled. *)

val pending : t -> int
(** Events scheduled and not yet fired or cancelled. *)

val fired : t -> int
(** Events whose callbacks have run. *)
