(** The x-kernel map manager.

    Maps translate external identifiers (port numbers, protocol numbers)
    to internal ones (sessions, protocols) and are primarily used for
    demultiplexing.  Implementation follows the paper: chained-bucket hash
    tables with a 1-behind cache, protected by a counting lock so that
    [iter] (the x-kernel's [mapForEach]) may recurse into the same map
    (Section 2.1).

    When the platform disables map locking, [lookup] skips the lock — the
    Section 3.1 experiment that measured the cost of demultiplexing
    serialisation (about 10% of receive-side throughput). *)

module type KEY = sig
  type t

  val hash : t -> int
  val equal : t -> t -> bool
end

module Make (K : KEY) : sig
  type 'v t

  val create : Pnp_engine.Platform.t -> ?buckets:int -> name:string -> unit -> 'v t

  val insert : 'v t -> K.t -> 'v -> unit
  (** Bind (replacing any existing binding). *)

  val lookup : 'v t -> K.t -> 'v option
  (** Demultiplex through the 1-behind cache, then the chain. *)

  val remove : 'v t -> K.t -> bool

  val iter : 'v t -> (K.t -> 'v -> unit) -> unit
  (** [mapForEach]: the callback runs under the map's counting lock and may
      call back into this map. *)

  val length : 'v t -> int

  (** {2 Statistics} *)

  val lookups : 'v t -> int
  val cache_hits : 'v t -> int
end
