lib/xkern/timewheel.ml: Array List Lock Platform Pnp_engine Pnp_util Printf Sim
