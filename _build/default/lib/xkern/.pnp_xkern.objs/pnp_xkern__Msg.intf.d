lib/xkern/msg.mli: Bytes Mpool
