lib/xkern/mpool.ml: Arch Array Atomic_ctr Bytes Hashtbl List Lock Platform Pnp_engine Sim
