lib/xkern/xmap.ml: Array List Lock Platform Pnp_engine Sim
