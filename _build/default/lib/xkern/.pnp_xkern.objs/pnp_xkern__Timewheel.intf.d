lib/xkern/timewheel.mli: Pnp_engine Pnp_util
