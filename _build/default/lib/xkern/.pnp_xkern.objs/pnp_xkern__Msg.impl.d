lib/xkern/msg.ml: Bytes Char List Mpool String
