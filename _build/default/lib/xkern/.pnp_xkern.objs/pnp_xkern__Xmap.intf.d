lib/xkern/xmap.mli: Pnp_engine
