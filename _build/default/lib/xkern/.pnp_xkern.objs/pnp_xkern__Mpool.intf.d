lib/xkern/mpool.mli: Bytes Pnp_engine
