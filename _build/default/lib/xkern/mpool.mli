(** MNode allocator: the memory behind the x-kernel message tool.

    MNodes are reference-counted buffers (the x-kernel analogue of mbuf
    clusters).  Reference counts are manipulated with the platform's
    counter mode — LL/SC atomics or lock-inc-unlock (Section 5.2).

    Allocation either goes to the global allocator, whose internal lock
    serialises all CPUs (malloc's lock in the paper), or — when the
    platform enables message caching (Section 6) — hits a per-thread LIFO
    free cache, which costs no locking and reuses memory last touched by
    the same processor. *)

type t
(** The allocator. *)

type mnode
(** A reference-counted buffer. *)

val create : Pnp_engine.Platform.t -> t

val alloc : t -> int -> mnode
(** [alloc t n] returns an MNode with capacity at least [n] and reference
    count 1. *)

val incref : t -> mnode -> unit
val decref : t -> mnode -> unit
(** Drop a reference; at zero the node returns to the caller's LIFO cache
    (if caching is on and the cache has room) or to the global allocator. *)

val data : mnode -> Bytes.t
val capacity : mnode -> int
val refs : mnode -> int

(** {2 Statistics (for the Section 6 experiment and tests)} *)

val allocations : t -> int
val cache_hits : t -> int
val global_allocations : t -> int
val live_nodes : t -> int
(** Nodes currently allocated (refcount > 0); zero after clean teardown. *)
