open Pnp_engine

type entry = {
  fire_tick : int;
  action : unit -> unit;
  mutable state : [ `Pending | `Cancelled | `Fired ];
}

type handle = entry

type t = {
  plat : Platform.t;
  name : string;
  slot_ns : int;
  cpu : int;
  chains : entry list array;
  chain_locks : Lock.t array;
  mutable pending : int;
  mutable fired : int;
  mutable ticking : bool;
  mutable next_tick : int;
}

let create plat ?(slot_ns = Pnp_util.Units.ms 10.0) ?(slots = 128) ?(cpu = 0) ~name () =
  if slots <= 0 then invalid_arg "Timewheel.create: slots must be positive";
  let chain_locks =
    Array.init slots (fun i ->
        Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
          ~name:(Printf.sprintf "%s.chain%d" name i))
  in
  {
    plat;
    name;
    slot_ns;
    cpu;
    chains = Array.make slots [];
    chain_locks;
    pending = 0;
    fired = 0;
    ticking = false;
    next_tick = 0;
  }

let nslots t = Array.length t.chains

let with_chain_lock t i f =
  if Sim.in_thread t.plat.Platform.sim then Lock.with_lock t.chain_locks.(i) f
  else f ()

(* Service all due entries of the slot for [tick], then arm the next tick
   if anything is still pending. *)
let rec service t tick =
  let slot = tick mod nslots t in
  let due = ref [] in
  with_chain_lock t slot (fun () ->
      let stay, fire = List.partition (fun e -> e.fire_tick > tick) t.chains.(slot) in
      t.chains.(slot) <- stay;
      due := fire);
  List.iter
    (fun e ->
      match e.state with
      | `Cancelled -> ()
      | `Fired -> assert false
      | `Pending ->
        e.state <- `Fired;
        t.pending <- t.pending - 1;
        t.fired <- t.fired + 1;
        e.action ())
    !due;
  arm t

and arm t =
  if t.pending > 0 && not t.ticking then begin
    t.ticking <- true;
    let tick = max t.next_tick ((Sim.now t.plat.Platform.sim / t.slot_ns) + 1) in
    t.next_tick <- tick;
    Sim.at t.plat.Platform.sim (tick * t.slot_ns) (fun () ->
        t.ticking <- false;
        t.next_tick <- tick + 1;
        (* Only spin up a worker when the slot has work due; empty ticks
           just re-arm. *)
        let slot = tick mod nslots t in
        let has_due = List.exists (fun e -> e.fire_tick <= tick) t.chains.(slot) in
        if has_due then
          ignore
            (Sim.spawn t.plat.Platform.sim ~cpu:t.cpu
               ~name:(Printf.sprintf "%s.tick%d" t.name tick)
               (fun () -> service t tick))
        else arm t)
  end

let schedule t ~after action =
  if after < 0 then invalid_arg "Timewheel.schedule: negative delay";
  let now = Sim.now t.plat.Platform.sim in
  let fire_tick = max ((now + after + t.slot_ns - 1) / t.slot_ns) ((now / t.slot_ns) + 1) in
  let e = { fire_tick; action; state = `Pending } in
  let slot = fire_tick mod nslots t in
  with_chain_lock t slot (fun () -> t.chains.(slot) <- e :: t.chains.(slot));
  t.pending <- t.pending + 1;
  arm t;
  e

let cancel t e =
  let slot = e.fire_tick mod nslots t in
  with_chain_lock t slot (fun () ->
      match e.state with
      | `Pending ->
        e.state <- `Cancelled;
        t.pending <- t.pending - 1;
        (* Unlink eagerly; the chain is short. *)
        t.chains.(slot) <- List.filter (fun e' -> e' != e) t.chains.(slot);
        true
      | `Cancelled | `Fired -> false)

let pending t = t.pending
let fired t = t.fired
