(** Send-side in-memory driver for UDP tests: consumes frames as fast as
    possible, counting the user payload that arrived. *)

type t

val attach : Stack.t -> t

val bytes_received : t -> int
(** UDP payload bytes (frame minus FDDI/IP/UDP headers). *)

val frames_received : t -> int
val reset_counters : t -> unit
