open Pnp_engine
open Pnp_xkern
open Pnp_proto

type entry = { time_ns : int; dir : [ `Out | `In ]; summary : string }

type t = {
  capacity : int;
  mutable buf : entry list; (* newest first *)
  mutable count : int;
  mutable seen : int;
}

let ip_off = Fddi.header_bytes
let udp_off = ip_off + Ip.header_bytes

let summarise msg =
  let len = Msg.length msg in
  if len < Fddi.header_bytes then Printf.sprintf "short frame (%dB)" len
  else if Msg.get_u16 msg 19 <> Ip.ethertype then
    Printf.sprintf "ethertype 0x%04x len=%d" (Msg.get_u16 msg 19) len
  else if len < udp_off then Printf.sprintf "truncated IP (%dB)" len
  else
    let proto = Msg.get_u8 msg (ip_off + 9) in
    let src = Msg.get_u32 msg (ip_off + 12) in
    let dst = Msg.get_u32 msg (ip_off + 16) in
    let addr a =
      Printf.sprintf "%d.%d.%d.%d" (a lsr 24) ((a lsr 16) land 0xff)
        ((a lsr 8) land 0xff) (a land 0xff)
    in
    if proto = Tcp_wire.protocol_number then begin
      match Frame.parse_tcp msg with
      | Some v ->
        Printf.sprintf "TCP %s:%d > %s:%d seq=%u ack=%u win=%d len=%d [%s]" (addr src)
          v.Frame.sport (addr dst) v.Frame.dport v.Frame.seq v.Frame.ack v.Frame.win
          v.Frame.payload_len
          (Tcp_wire.flags_to_string v.Frame.flags)
      | None -> Printf.sprintf "TCP %s > %s (unparseable)" (addr src) (addr dst)
    end
    else if proto = Udp.protocol_number then
      Printf.sprintf "UDP %s:%d > %s:%d len=%d" (addr src)
        (Msg.get_u16 msg udp_off) (addr dst)
        (Msg.get_u16 msg (udp_off + 2))
        (Msg.get_u16 msg (udp_off + 4))
    else Printf.sprintf "IP proto=%d %s > %s len=%d" proto (addr src) (addr dst) len

let attach stack ?(capacity = 1024) () =
  let t = { capacity; buf = []; count = 0; seen = 0 } in
  Fddi.set_tap stack.Stack.fddi (fun ~dir msg ->
      t.seen <- t.seen + 1;
      let e =
        { time_ns = Sim.now stack.Stack.plat.Platform.sim; dir; summary = summarise msg }
      in
      t.buf <- e :: t.buf;
      t.count <- t.count + 1;
      if t.count > t.capacity then begin
        (* Drop the oldest; the buffer is short, so the rebuild is cheap. *)
        t.buf <- List.filteri (fun i _ -> i < t.capacity) t.buf;
        t.count <- t.capacity
      end);
  t

let entries t = List.rev t.buf
let seen t = t.seen

let clear t =
  t.buf <- [];
  t.count <- 0

let pp_entry fmt e =
  let arrow = match e.dir with `Out -> "->" | `In -> "<-" in
  Format.fprintf fmt "%10.3fus  %s %s"
    (float_of_int e.time_ns /. 1e3)
    arrow e.summary
