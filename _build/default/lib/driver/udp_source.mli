(** Receive-side in-memory driver for UDP tests: an infinite supply of
    preconstructed datagrams.  Each call to {!next} hands the calling
    thread one frame (a shared-template duplicate — the paper's drivers
    use preconstructed templates and never checksum at run time) and
    pushes it up the stack. *)

type t

val attach :
  Stack.t ->
  peer_addr:int ->
  payload:int ->
  checksum:bool ->
  ?jitter_mean_ns:float ->
  ports:(int * int) list ->
  unit ->
  t
(** [ports] lists (driver port, receiver port) pairs, one per stream.
    [jitter_mean_ns] is the per-packet exponential service jitter
    (default 8 us). *)

val next : t -> stream:int -> unit
(** Produce one datagram on the stream and carry it up the stack. *)

val frames_injected : t -> int
