(** A simulated full-duplex point-to-point link between two complete
    stacks.

    Unlike the in-memory drivers of the paper's experiments (which play
    the role of an infinitely fast peer), a link connects two {e real}
    stacks: both ends run the full protocol machinery, the handshake and
    every acknowledgement crosses the wire, and the link itself models
    propagation latency, serialisation at a finite bandwidth, and random
    loss.  This is the configuration a user of the library would deploy.

    Frames are delivered to each end by a per-direction receive thread
    (the "interrupt context"), so protocol input runs in a context that
    may take locks. *)

type t

val connect :
  Pnp_engine.Platform.t ->
  ?latency:Pnp_util.Units.ns ->
  ?bandwidth_mbps:float ->
  ?loss_rate:float ->
  a:Stack.t ->
  b:Stack.t ->
  unit ->
  t
(** Wire the two stacks together (replaces both FDDI transmit hooks).
    Defaults: 50 us propagation latency, 100 Mbit/s serialisation, no
    loss.  Both stacks must share [plat]'s simulation. *)

val frames_ab : t -> int
val frames_ba : t -> int
val dropped : t -> int

val in_flight : t -> int
(** Frames queued or propagating in either direction. *)
