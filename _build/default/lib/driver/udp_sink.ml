open Pnp_xkern
open Pnp_proto

type t = { mutable bytes : int; mutable frames : int }

let headers = Fddi.header_bytes + Ip.header_bytes + Udp.header_bytes

let attach stack =
  let t = { bytes = 0; frames = 0 } in
  Fddi.set_transmit stack.Stack.fddi (fun frame ->
      Costs.charge stack.Stack.plat Costs.driver_xmit;
      t.frames <- t.frames + 1;
      t.bytes <- t.bytes + max 0 (Msg.length frame - headers);
      Msg.destroy frame);
  t

let bytes_received t = t.bytes
let frames_received t = t.frames

let reset_counters t =
  t.bytes <- 0;
  t.frames <- 0
