(** A tcpdump-style frame sniffer on the simulated wire.

    Attaches to the stack's FDDI tap and records a one-line summary of
    every frame in both directions, with simulated timestamps.  Costs no
    simulated time; intended for debugging and for the `repro trace`
    command. *)

type t

type entry = {
  time_ns : int;
  dir : [ `Out | `In ];
  summary : string;
}

val attach : Stack.t -> ?capacity:int -> unit -> t
(** Start recording (keeps at most [capacity] entries, default 1024;
    older entries are dropped). *)

val entries : t -> entry list
(** Recorded entries, oldest first. *)

val seen : t -> int
(** Total frames observed (including ones evicted from the buffer). *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
(** ["  12.345us  -> TCP 5000>80 seq=1 ack=0 win=1048576 len=4096 [SA]"]. *)

val summarise : Pnp_xkern.Msg.t -> string
(** Decode a raw FDDI frame into the one-line summary (exposed for
    tests). *)
