lib/driver/sniffer.ml: Fddi Format Frame Ip List Msg Platform Pnp_engine Pnp_proto Pnp_xkern Printf Sim Stack Tcp_wire Udp
