lib/driver/udp_source.ml: Array Costs Fddi Frame List Lock Msg Platform Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Prng Sim Stack
