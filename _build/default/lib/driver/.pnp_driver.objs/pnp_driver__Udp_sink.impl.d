lib/driver/udp_sink.ml: Costs Fddi Ip Msg Pnp_proto Pnp_xkern Stack Udp
