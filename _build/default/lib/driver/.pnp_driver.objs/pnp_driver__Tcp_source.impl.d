lib/driver/tcp_source.ml: Array Costs Fddi Frame Ip List Lock Msg Platform Pnp_engine Pnp_proto Pnp_util Pnp_xkern Printf Prng Sim Stack Tcp_seq Tcp_wire
