lib/driver/tcp_source.mli: Stack
