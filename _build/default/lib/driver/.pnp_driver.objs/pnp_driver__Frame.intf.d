lib/driver/frame.mli: Pnp_proto Pnp_xkern
