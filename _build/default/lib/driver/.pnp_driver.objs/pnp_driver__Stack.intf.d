lib/driver/stack.mli: Pnp_engine Pnp_proto Pnp_xkern
