lib/driver/frame.ml: Fddi Ip Msg Pnp_proto Pnp_xkern Tcp_wire Udp
