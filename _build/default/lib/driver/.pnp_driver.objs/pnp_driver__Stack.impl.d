lib/driver/stack.ml: Fddi Icmp Ip Mpool Platform Pnp_engine Pnp_proto Pnp_xkern Tcp Timewheel Udp
