lib/driver/sniffer.mli: Format Pnp_xkern Stack
