lib/driver/tcp_peer.mli: Stack
