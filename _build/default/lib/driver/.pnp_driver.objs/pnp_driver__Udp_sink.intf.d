lib/driver/udp_sink.mli: Stack
