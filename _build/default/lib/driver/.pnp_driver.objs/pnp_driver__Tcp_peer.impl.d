lib/driver/tcp_peer.ml: Costs Fddi Frame Hashtbl List Msg Platform Pnp_engine Pnp_proto Pnp_util Pnp_xkern Prng Sim Stack Tcp_seq Tcp_wire
