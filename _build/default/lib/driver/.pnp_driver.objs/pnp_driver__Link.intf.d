lib/driver/link.mli: Pnp_engine Pnp_util Stack
