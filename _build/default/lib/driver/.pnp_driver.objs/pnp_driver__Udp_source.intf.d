lib/driver/udp_source.mli: Stack
