lib/driver/link.ml: Fddi Msg Platform Pnp_engine Pnp_proto Pnp_util Pnp_xkern Prng Queue Sim Stack Units
