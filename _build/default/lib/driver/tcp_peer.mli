(** Send-side in-memory driver: a simulated TCP {e receiver} below FDDI
    (SIM-TCP-RECV in the paper's Figure 1).

    It consumes data segments as fast as possible and acknowledges every
    other one, mimicking Net/2 TCP talking to itself; it "borrows the
    stack of the calling thread" to push the acknowledgement back up
    (Section 2.3).  It also completes the connection handshake and tracks
    how many data segments appeared out of order on the simulated wire
    (the Section 4.1 send-side misordering measurement). *)

type t

val attach :
  Stack.t -> peer_addr:int -> ack_window:int -> checksum:bool -> ?loss_rate:float -> unit -> t
(** Install below the stack's FDDI layer.  [ack_window] is the window the
    simulated receiver advertises; [checksum] controls whether its acks
    carry valid checksums (matching the stack's configuration).
    [loss_rate] silently drops that fraction of data segments, for
    retransmission tests (default 0: the paper's error-free network). *)

val bytes_received : t -> int
(** Data payload bytes consumed (the send-side throughput numerator). *)

val data_segments : t -> int
val acks_sent : t -> int
val wire_misorders : t -> int
(** Data segments whose sequence number was lower than one already seen —
    packets that passed each other below TCP. *)

val fins_received : t -> int
val segments_dropped : t -> int

val unique_bytes : t -> port:int -> int
(** Contiguous in-order bytes received from the sender on [port]
    (duplicates from retransmission excluded). *)

val stream_established : t -> port:int -> bool
(** Whether the sender on the given local port completed its handshake. *)

val stream_closed : t -> port:int -> bool
(** Whether a FIN arrived from that sender. *)

val set_window : t -> int -> unit
(** Change the advertised receive window.  Reopening a closed (zero)
    window sends a window-update ack on every established stream; call
    from a simulated thread in that case. *)

val reset_counters : t -> unit
(** Zero the byte/segment counters (used at the end of warmup). *)
