open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto

(* One direction of the link: a serialising transmitter feeding a receive
   thread through a delivery queue. *)
type direction = {
  dest : Stack.t;
  queue : Msg.t Queue.t;
  mutable rx_wakeup : (int -> unit) option; (* receive thread parked here *)
  mutable busy_until : int; (* transmitter serialisation horizon *)
  mutable frames : int;
}

type t = {
  plat : Platform.t;
  latency : Units.ns;
  bandwidth_mbps : float;
  loss_rate : float;
  rng : Prng.t;
  ab : direction;
  ba : direction;
  mutable dropped : int;
  mutable in_flight : int;
}

let serialisation_ns t bytes =
  (* Mbit/s = 10^-3 bits/ns. *)
  int_of_float (float_of_int (8 * bytes) /. (t.bandwidth_mbps /. 1000.0))

(* The receive side: a daemon thread that sleeps until frames arrive and
   pushes them up the destination stack. *)
let start_rx t dir ~name ~cpu =
  ignore
    (Sim.spawn t.plat.Platform.sim ~cpu ~name (fun () ->
         while true do
           if Queue.is_empty dir.queue then
             Sim.suspend t.plat.Platform.sim (fun resume -> dir.rx_wakeup <- Some resume)
           else begin
             let frame = Queue.pop dir.queue in
             t.in_flight <- t.in_flight - 1;
             Fddi.input dir.dest.Stack.fddi frame
           end
         done))

let deliver t dir frame =
  Queue.push frame dir.queue;
  match dir.rx_wakeup with
  | Some resume ->
    dir.rx_wakeup <- None;
    resume (Sim.now t.plat.Platform.sim)
  | None -> ()

(* The transmit side: drop or schedule arrival after serialisation +
   propagation.  Runs in the sender's thread; only the arrival crosses
   into the receive thread. *)
let transmit t dir frame =
  if t.loss_rate > 0.0 && Prng.float t.rng 1.0 < t.loss_rate then begin
    t.dropped <- t.dropped + 1;
    Msg.destroy frame
  end
  else begin
    let now = Sim.now t.plat.Platform.sim in
    let start = max now dir.busy_until in
    let ser = serialisation_ns t (Msg.length frame) in
    dir.busy_until <- start + ser;
    dir.frames <- dir.frames + 1;
    t.in_flight <- t.in_flight + 1;
    Sim.at t.plat.Platform.sim (start + ser + t.latency) (fun () -> deliver t dir frame)
  end

let connect plat ?(latency = Units.us 50.0) ?(bandwidth_mbps = 100.0)
    ?(loss_rate = 0.0) ~(a : Stack.t) ~(b : Stack.t) () =
  let mk dest = { dest; queue = Queue.create (); rx_wakeup = None; busy_until = 0; frames = 0 } in
  let t =
    {
      plat;
      latency;
      bandwidth_mbps;
      loss_rate;
      rng = Prng.split (Sim.prng plat.Platform.sim);
      ab = mk b;
      ba = mk a;
      dropped = 0;
      in_flight = 0;
    }
  in
  Fddi.set_transmit a.Stack.fddi (fun frame -> transmit t t.ab frame);
  Fddi.set_transmit b.Stack.fddi (fun frame -> transmit t t.ba frame);
  start_rx t t.ab ~name:"link.rx.b" ~cpu:100;
  start_rx t t.ba ~name:"link.rx.a" ~cpu:101;
  t

let frames_ab t = t.ab.frames
let frames_ba t = t.ba.frames
let dropped t = t.dropped
let in_flight t = t.in_flight
