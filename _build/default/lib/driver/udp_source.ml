open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto

type stream = { template : Msg.t; ring_lock : Lock.t }

type t = {
  stack : Stack.t;
  streams : stream array;
  jitter : Prng.t;
  jitter_mean_ns : float;
  mutable injected : int;
}



let attach stack ~peer_addr ~payload ~checksum ?(jitter_mean_ns = 8000.0) ~ports () =
  let plat = stack.Stack.plat in
  let streams =
    Array.of_list
      (List.map
         (fun (drv_port, rcv_port) ->
           let m = Msg.create stack.Stack.pool payload in
           Msg.fill_pattern m ~off:0 ~len:payload ~stream_off:0;
           let template =
             Frame.build_udp stack.Stack.pool ~src:peer_addr
               ~dst:stack.Stack.local_addr ~sport:drv_port ~dport:rcv_port ~payload:m
               ~checksum
           in
           {
             template;
             ring_lock =
               Lock.create plat.Platform.sim plat.Platform.arch Lock.Unfair
                 ~name:(Printf.sprintf "driver.ring.%d" drv_port);
           })
         ports)
  in
  (* Outbound traffic on a UDP receive test is nonexistent; discard. *)
  Fddi.set_transmit stack.Stack.fddi (fun frame -> Msg.destroy frame);
  { stack; streams; jitter = Prng.split (Sim.prng plat.Platform.sim); jitter_mean_ns; injected = 0 }

let next t ~stream =
  let s = t.streams.(stream) in
  let plat = t.stack.Stack.plat in
  Lock.acquire s.ring_lock;
  Costs.charge plat Costs.driver_recv;
  let frame = Msg.dup s.template in
  t.injected <- t.injected + 1;
  Lock.release s.ring_lock;
  (* Per-thread service variance, after the in-order handout. *)
  Platform.charge plat (int_of_float (Prng.exponential t.jitter ~mean:t.jitter_mean_ns));
  Fddi.input t.stack.Stack.fddi frame

let frames_injected t = t.injected
