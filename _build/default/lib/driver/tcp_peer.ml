open Pnp_engine
open Pnp_util
open Pnp_xkern
open Pnp_proto

type stream = {
  sender_port : int; (* the real TCP's local port *)
  peer_port : int;
  peer_iss : int;
  mutable peer_seq : int; (* our (the simulated receiver's) next seq *)
  mutable irs : int; (* the sender's initial sequence number *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list; (* out-of-order (seq, len) waiting *)
  mutable since_ack : int;
  mutable highest_seq : int;
  mutable started : bool;
  mutable fin_seen : bool; (* a FIN arrived on this stream *)
}

let stream_started s = s.started
let stream_fin_seen s = s.fin_seen

type t = {
  stack : Stack.t;
  peer_addr : int;
  mutable ack_window : int;
  checksum : bool;
  loss_rate : float; (* probability of silently dropping a data segment *)
  loss_rng : Prng.t;
  streams : (int, stream) Hashtbl.t; (* keyed by the sender's port *)
  mutable bytes : int;
  mutable data_segments : int;
  mutable acks_sent : int;
  mutable wire_misorders : int;
  mutable drops : int;
  mutable fins : int;
}

let plat t = t.stack.Stack.plat

let stream_for t (v : Frame.tcp_view) =
  match Hashtbl.find_opt t.streams v.Frame.sport with
  | Some s -> s
  | None ->
    let s =
      {
        sender_port = v.Frame.sport;
        peer_port = v.Frame.dport;
        peer_iss = 0x40000000 + v.Frame.sport;
        peer_seq = 0x40000000 + v.Frame.sport;
        irs = 0;
        rcv_nxt = 0;
        ooo = [];
        since_ack = 0;
        highest_seq = 0;
        started = false;
        fin_seen = false;
      }
    in
    Hashtbl.replace t.streams v.Frame.sport s;
    s

(* Push a segment from the simulated peer up through the sender's stack,
   borrowing the calling thread. *)
let inject t stream ~flags ~payload_len:_ =
  let frame =
    Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr ~dst:t.stack.Stack.local_addr
      ~sport:stream.peer_port ~dport:stream.sender_port ~seq:stream.peer_seq
      ~ack:stream.rcv_nxt ~flags ~win:t.ack_window ~payload:None ~checksum:t.checksum
  in
  Fddi.input t.stack.Stack.fddi frame

let send_ack t stream =
  t.acks_sent <- t.acks_sent + 1;
  stream.since_ack <- 0;
  inject t stream ~flags:Tcp_wire.flag_ack ~payload_len:0

(* Absorb contiguous out-of-order segments after rcv_nxt advanced. *)
let drain_ooo stream =
  let rec go () =
    match List.find_opt (fun (s, _) -> s = stream.rcv_nxt) stream.ooo with
    | Some ((s, l) as entry) ->
      ignore s;
      stream.ooo <- List.filter (fun e -> e != entry) stream.ooo;
      stream.rcv_nxt <- Tcp_seq.add stream.rcv_nxt l;
      go ()
    | None -> ()
  in
  go ()

let handle t frame =
  Costs.charge (plat t) Costs.driver_xmit;
  (match Frame.parse_tcp frame with
   | None -> Msg.destroy frame
   | Some v ->
     let stream = stream_for t v in
     if v.Frame.flags.Tcp_wire.syn && not v.Frame.flags.Tcp_wire.ack then begin
       (* Connection setup: answer SYN with SYN-ACK. *)
       stream.irs <- v.Frame.seq;
       stream.rcv_nxt <- Tcp_seq.add v.Frame.seq 1;
       stream.highest_seq <- v.Frame.seq;
       stream.started <- true;
       let syn_seq = stream.peer_iss in
       stream.peer_seq <- Tcp_seq.add stream.peer_iss 1;
       Msg.destroy frame;
       let syn_ack =
         Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr
           ~dst:t.stack.Stack.local_addr ~sport:stream.peer_port
           ~dport:stream.sender_port ~seq:syn_seq ~ack:stream.rcv_nxt
           ~flags:Tcp_wire.flag_syn_ack ~win:t.ack_window ~payload:None
           ~checksum:t.checksum
       in
       Fddi.input t.stack.Stack.fddi syn_ack
     end
     else begin
       let len = v.Frame.payload_len in
       if len > 0 then begin
         if t.loss_rate > 0.0 && Prng.float t.loss_rng 1.0 < t.loss_rate then begin
           (* Simulated wire loss: the segment vanishes. *)
           t.drops <- t.drops + 1;
           Msg.destroy frame
         end
         else begin
           t.data_segments <- t.data_segments + 1;
           t.bytes <- t.bytes + len;
           (* Wire-order bookkeeping (Section 4.1: "fewer than one percent
              were misordered" below TCP on the send side). *)
           if Tcp_seq.lt v.Frame.seq stream.highest_seq then
             t.wire_misorders <- t.wire_misorders + 1
           else stream.highest_seq <- v.Frame.seq;
           let first_data = Tcp_seq.diff stream.rcv_nxt (Tcp_seq.add stream.irs 1) = 0 in
           (* Cumulative-ack reassembly; duplicates, gaps and zero-window
              probes force an immediate ack, like a real receiver. *)
           let ack_now = ref (first_data || t.ack_window = 0) in
           let seg_end = Tcp_seq.add v.Frame.seq len in
           if v.Frame.seq = stream.rcv_nxt then begin
             stream.rcv_nxt <- seg_end;
             (* A segment that fills a gap must be acked at once, or the
                sender sits in its backoff until the next timeout. *)
             if stream.ooo <> [] then ack_now := true;
             drain_ooo stream
           end
           else if Tcp_seq.lt v.Frame.seq stream.rcv_nxt && Tcp_seq.gt seg_end stream.rcv_nxt
           then begin
             (* Retransmission overlapping data we already have: keep the
                new tail, ack at once. *)
             stream.rcv_nxt <- seg_end;
             drain_ooo stream;
             ack_now := true
           end
           else begin
             ack_now := true;
             if Tcp_seq.gt v.Frame.seq stream.rcv_nxt then
               stream.ooo <- (v.Frame.seq, len) :: stream.ooo
           end;
           stream.since_ack <- stream.since_ack + 1;
           Msg.destroy frame;
           (* Ack every other packet, like Net/2 talking to itself; the
              first data segment and out-of-order arrivals ack at once. *)
           if !ack_now || stream.since_ack >= 2 then send_ack t stream
         end
       end
       else begin
         (if v.Frame.flags.Tcp_wire.fin then begin
            t.fins <- t.fins + 1;
            stream.fin_seen <- true;
            if Tcp_seq.add v.Frame.seq len = stream.rcv_nxt || v.Frame.seq = stream.rcv_nxt
            then begin
              stream.rcv_nxt <- Tcp_seq.add v.Frame.seq 1;
              Msg.destroy frame;
              send_ack t stream;
              (* Close our half too so the sender can reach TIME_WAIT. *)
              let fin_seq = stream.peer_seq in
              stream.peer_seq <- Tcp_seq.add stream.peer_seq 1;
              let fin =
                Frame.build_tcp t.stack.Stack.pool ~src:t.peer_addr
                  ~dst:t.stack.Stack.local_addr ~sport:stream.peer_port
                  ~dport:stream.sender_port ~seq:fin_seq ~ack:stream.rcv_nxt
                  ~flags:Tcp_wire.flag_fin_ack ~win:t.ack_window ~payload:None
                  ~checksum:t.checksum
              in
              Fddi.input t.stack.Stack.fddi fin
            end
            else Msg.destroy frame
          end
          else
            (* a FIN-less dataless segment (window update / plain ack) *)
            Msg.destroy frame);
         (* Data segments carrying FIN are not generated by our TCP. *)
         ()
       end
     end)

let attach stack ~peer_addr ~ack_window ~checksum ?(loss_rate = 0.0) () =
  let t =
    {
      stack;
      peer_addr;
      ack_window;
      checksum;
      loss_rate;
      loss_rng = Prng.split (Sim.prng stack.Stack.plat.Platform.sim);
      streams = Hashtbl.create 8;
      bytes = 0;
      data_segments = 0;
      acks_sent = 0;
      wire_misorders = 0;
      drops = 0;
      fins = 0;
    }
  in
  Fddi.set_transmit stack.Stack.fddi (fun frame -> handle t frame);
  t

let bytes_received t = t.bytes
let data_segments t = t.data_segments
let acks_sent t = t.acks_sent
let wire_misorders t = t.wire_misorders
let fins_received t = t.fins
let segments_dropped t = t.drops

let unique_bytes t ~port =
  match Hashtbl.find_opt t.streams port with
  | Some s -> Tcp_seq.diff s.rcv_nxt (Tcp_seq.add s.irs 1)
  | None -> 0

let stream_established t ~port =
  match Hashtbl.find_opt t.streams port with
  | Some s -> stream_started s
  | None -> false

let stream_closed t ~port =
  match Hashtbl.find_opt t.streams port with
  | Some s -> stream_fin_seen s
  | None -> false

(* Change the advertised window.  Reopening a closed window announces the
   update to every established sender, as a real receiver would.  Must be
   called from a simulated thread when announcing. *)
let set_window t w =
  let announce = t.ack_window = 0 && w > 0 in
  t.ack_window <- w;
  if announce then
    Hashtbl.iter (fun _ stream -> if stream.started then send_ack t stream) t.streams

let reset_counters t =
  t.bytes <- 0;
  t.data_segments <- 0;
  t.acks_sent <- 0;
  t.wire_misorders <- 0
