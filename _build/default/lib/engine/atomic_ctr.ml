type mode = Ll_sc | Locked

type t = {
  sim : Sim.t;
  arch : Arch.t;
  mode : mode;
  lock : Lock.t option; (* present iff mode = Locked *)
  mutable value : int;
}

let create sim arch mode ~name ~init =
  let lock =
    match mode with
    | Ll_sc -> None
    | Locked -> Some (Lock.create sim arch Lock.Unfair ~name:(name ^ ".lock"))
  in
  { sim; arch; mode; lock; value = init }

(* The locked path pays the full lock round trip plus a procedure call
   (Section 5.2: replacing it removes a layer of procedure call and turns
   three memory writes into one). *)
let procedure_call_instrs = 12

let apply t d =
  if not (Sim.in_thread t.sim) then begin
    (* Setup code: mutate without charging simulated time. *)
    t.value <- t.value + d;
    t.value
  end
  else
    match t.lock with
    | None ->
      Sim.delay t.sim t.arch.Arch.atomic_ns;
      t.value <- t.value + d;
      t.value
    | Some lock ->
      Sim.delay t.sim (Arch.instr_ns t.arch procedure_call_instrs);
      Lock.acquire lock;
      Sim.delay t.sim (Arch.instr_ns t.arch 2);
      t.value <- t.value + d;
      let v = t.value in
      Lock.release lock;
      v

let incr t = apply t 1
let decr t = apply t (-1)
let get t = t.value
let mode t = t.mode
