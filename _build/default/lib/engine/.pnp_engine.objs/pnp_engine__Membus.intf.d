lib/engine/membus.mli: Arch Pnp_util Sim
