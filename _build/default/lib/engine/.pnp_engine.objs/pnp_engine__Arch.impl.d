lib/engine/arch.ml: List
