lib/engine/platform.ml: Arch Atomic_ctr Lock Membus Sim
