lib/engine/gate.ml: Arch Hashtbl Printf Sim
