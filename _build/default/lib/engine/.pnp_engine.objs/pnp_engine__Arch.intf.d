lib/engine/arch.mli:
