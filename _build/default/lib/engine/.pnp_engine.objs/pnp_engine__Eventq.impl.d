lib/engine/eventq.ml: Array
