lib/engine/gate.mli: Arch Pnp_util Sim
