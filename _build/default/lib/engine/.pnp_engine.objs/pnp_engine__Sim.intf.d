lib/engine/sim.mli: Format Pnp_util
