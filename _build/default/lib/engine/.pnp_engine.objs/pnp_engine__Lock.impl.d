lib/engine/lock.ml: Arch Fun List Pnp_util Printf Prng Sim
