lib/engine/membus.ml: Arch Float Fun Option Sim
