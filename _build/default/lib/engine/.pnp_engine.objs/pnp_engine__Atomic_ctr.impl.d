lib/engine/atomic_ctr.ml: Arch Lock Sim
