lib/engine/atomic_ctr.mli: Arch Sim
