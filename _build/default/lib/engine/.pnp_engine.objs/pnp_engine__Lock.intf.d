lib/engine/lock.mli: Arch Pnp_util Sim
