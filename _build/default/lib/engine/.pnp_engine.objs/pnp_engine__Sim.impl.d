lib/engine/sim.ml: Effect Eventq Format Fun List Option Pnp_util Printf Prng
