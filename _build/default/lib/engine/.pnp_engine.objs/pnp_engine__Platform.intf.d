lib/engine/platform.mli: Arch Atomic_ctr Lock Membus Pnp_util Sim
