lib/engine/eventq.mli:
