(** Shared counters manipulated either by LL/SC atomic operations or by a
    lock-increment-unlock sequence — the comparison of Section 5.2.

    The x-kernel manipulates reference counts on every layer crossing; the
    paper replaces lock-inc-unlock sequences with load-linked /
    store-conditional atomic increments and measures ~20% receive-side and
    5-10% send-side TCP improvement. *)

type mode =
  | Ll_sc    (** lock-free atomic increment (short R4000 assembler in the paper) *)
  | Locked   (** acquire a mutex, increment, release *)

type t

val create : Sim.t -> Arch.t -> mode -> name:string -> init:int -> t

val incr : t -> int
(** Atomically add 1; returns the new value, charging per the mode. *)

val decr : t -> int
(** Atomically subtract 1; returns the new value. *)

val get : t -> int
(** Unsynchronised read (free: reads of an int are atomic on the machine). *)

val mode : t -> mode
