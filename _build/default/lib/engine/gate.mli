(** Ticketing (bakery) gate for order preservation above TCP.

    Section 4.2: before releasing the TCP connection-state lock, a
    receiving thread takes an up-ticket; above TCP, where the application
    requires order, the thread waits until its ticket is called.  The gate
    serialises delivery in ticket order regardless of how threads were
    scheduled in between. *)

type t

val create : Sim.t -> Arch.t -> name:string -> t

val take : t -> int
(** Take the next ticket (caller should hold whatever lock defines the
    order, e.g. the TCP state lock).  Charges a small atomic cost. *)

val await : t -> int -> unit
(** Block the calling thread until the gate is serving the given ticket. *)

val advance : t -> unit
(** Finish the currently served ticket and wake the holder of the next
    one, if it is already waiting. *)

val serving : t -> int
val tickets_issued : t -> int
val total_wait_ns : t -> Pnp_util.Units.ns
