(** Shared memory-bus bandwidth.

    Bulk data operations (checksums, copies) read packet data through the
    shared bus.  Each CPU alone sustains the architecture's per-CPU
    bandwidth; when several stream simultaneously, the aggregate is capped
    by [arch.bus_mb_per_s].  Section 3.2 measures 32 MB/s per CPU against a
    1.2 GB/s bus — "the bus could support up to 38 processors doing nothing
    but checksumming" — and this module reproduces that division. *)

type t

val create : Sim.t -> Arch.t -> t

val consume : ?rate_mb_s:float -> t -> bytes:int -> unit
(** Stream [bytes] through the bus from the calling thread, blocking for
    the transfer duration.  The effective rate is
    [min per_cpu (bus / concurrent_users)], evaluated when the transfer
    starts (a fluid approximation; transfers here are short and uniform,
    so re-evaluating mid-flight would change nothing measurable). *)

val duration_ns : ?rate_mb_s:float -> t -> bytes:int -> users:int -> Pnp_util.Units.ns
(** The transfer time [consume] would charge with the given number of
    concurrent users (exposed for tests and the checksum microbenchmark). *)

val concurrent_users : t -> int
val bytes_transferred : t -> int
