(** Architecture parameter records for the three machines in the paper.

    The simulator charges time for protocol work, locking, and bulk memory
    traffic according to these parameters.  They are calibrated from the
    numbers the paper itself reports (lock costs of Section 4.1, the
    32 MB/s per-CPU checksum bandwidth of Section 3.2, 1.2 GB/s aggregate
    bus bandwidth) plus the qualitative architectural facts of Section 7:
    the Challenge synchronises through the memory coherency protocol
    (LL/SC), so contended lock transfers pay a cache-line migration
    penalty, while the Power Series uses a dedicated synchronisation bus
    and pays none. *)

type sync_style =
  | Coherency  (** locks ride the memory system; cross-CPU handoff pays [coherency_ns] *)
  | Sync_bus   (** dedicated synchronisation bus; no cross-CPU handoff penalty *)

type t = {
  name : string;
  cpus : int;              (** processors available on the machine *)
  clock_mhz : float;
  cpi : float;             (** average cycles per instruction *)
  mem_ns_per_byte : float; (** cost of touching packet/state memory outside bulk ops *)
  cksum_mb_per_s : float;  (** per-CPU checksum (bulk read) bandwidth *)
  copy_mb_per_s : float;   (** per-CPU bulk write/copy bandwidth (payload fills) *)
  bus_mb_per_s : float;    (** aggregate memory bus bandwidth *)
  mutex_ns : int;          (** uncontended mutex acquire (paper: 0.7 us on Challenge) *)
  mcs_ns : int;            (** uncontended MCS acquire (paper: 1.5 us on Challenge) *)
  handoff_ns : int;        (** contended lock grant cost charged to the grantee *)
  coherency_ns : int;      (** extra cost when a lock/line moves between CPUs *)
  atomic_ns : int;         (** one LL/SC atomic increment or decrement *)
  sync : sync_style;
}

val challenge_100 : t
(** 8-processor SGI Challenge, 100 MHz MIPS R4400 — the paper's main machine. *)

val challenge_150 : t
(** 4-processor SGI Challenge, 150 MHz MIPS R4400. *)

val power_series_33 : t
(** 4-processor SGI Power Series, 33 MHz MIPS R3000, synchronisation bus. *)

val all : t list

val by_name : string -> t option

val instr_ns : t -> int -> int
(** [instr_ns arch n] is the time to execute [n] instructions. *)

val touch_ns : t -> int -> int
(** [touch_ns arch bytes] is the time to touch [bytes] of non-bulk memory
    (headers, protocol state). *)
