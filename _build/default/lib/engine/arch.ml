type sync_style = Coherency | Sync_bus

type t = {
  name : string;
  cpus : int;
  clock_mhz : float;
  cpi : float;
  mem_ns_per_byte : float;
  cksum_mb_per_s : float;
  copy_mb_per_s : float;
  bus_mb_per_s : float;
  mutex_ns : int;
  mcs_ns : int;
  handoff_ns : int;
  coherency_ns : int;
  atomic_ns : int;
  sync : sync_style;
}

(* Calibration notes:
   - mutex/mcs costs are the paper's own measurements (0.7 us / 1.5 us).
   - cksum_mb_per_s = 32 on the Challenge is measured in Section 3.2.
   - cpi here is an *effective* cycles-per-instruction along the protocol
     path, with memory stalls folded in: Section 7 observes that the
     100 MHz Challenge is only 25-50% faster than the 33 MHz Power Series
     at one CPU despite a 3x clock, because protocol processing is
     memory-bound.  The calibration anchors the Challenge-100 at
     10 ns/instruction and gives the Power Series ~15 ns and the
     Challenge-150 ~9.2 ns of effective path time per instruction.
   - coherency_ns on the Challenge models the cache-line migration a lock
     handoff costs under LL/SC synchronisation; the Power Series
     synchronisation bus makes it zero, which is what removes the 2-CPU
     receive-side dip there. *)

let challenge_100 =
  {
    name = "challenge-100";
    cpus = 8;
    clock_mhz = 100.0;
    cpi = 1.0;
    mem_ns_per_byte = 35.0;
    cksum_mb_per_s = 32.0;
    copy_mb_per_s = 55.0;
    bus_mb_per_s = 1200.0;
    mutex_ns = 700;
    mcs_ns = 1500;
    handoff_ns = 500;
    coherency_ns = 1300;
    atomic_ns = 150;
    sync = Coherency;
  }

let challenge_150 =
  {
    challenge_100 with
    name = "challenge-150";
    cpus = 4;
    clock_mhz = 150.0;
    cpi = 1.38;
    mem_ns_per_byte = 32.0;
    cksum_mb_per_s = 38.0;
    copy_mb_per_s = 62.0;
    mutex_ns = 600;
    mcs_ns = 1300;
    handoff_ns = 450;
    coherency_ns = 1200;
    atomic_ns = 120;
  }

let power_series_33 =
  {
    name = "power-33";
    cpus = 4;
    clock_mhz = 33.0;
    cpi = 0.5;
    mem_ns_per_byte = 52.0;
    cksum_mb_per_s = 20.0;
    copy_mb_per_s = 36.0;
    bus_mb_per_s = 256.0;
    mutex_ns = 1600;
    mcs_ns = 3400;
    handoff_ns = 900;
    coherency_ns = 0;
    atomic_ns = 500;
    sync = Sync_bus;
  }

let all = [ challenge_100; challenge_150; power_series_33 ]

let by_name name = List.find_opt (fun a -> a.name = name) all

let instr_ns arch n =
  int_of_float ((float_of_int n *. arch.cpi *. 1000.0 /. arch.clock_mhz) +. 0.5)

let touch_ns arch bytes = int_of_float ((float_of_int bytes *. arch.mem_ns_per_byte) +. 0.5)
