(** Priority queue of timestamped simulator events.

    Events at equal timestamps fire in insertion order (a monotone sequence
    number breaks ties), which keeps every run of the simulator bit-for-bit
    deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:int -> 'a -> unit
(** Insert an event at the given absolute time. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> int option
(** Timestamp of the earliest event without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
