(** Time and rate units.

    Simulated time is an [int] count of nanoseconds.  63-bit ints hold about
    292 simulated years, far beyond any experiment here, and integer time
    keeps event ordering exact and deterministic. *)

type ns = int
(** Nanoseconds of simulated time. *)

val ns : int -> ns
val us : float -> ns
val ms : float -> ns
val sec : float -> ns

val ns_to_sec : ns -> float

val mbits_per_sec : bytes_transferred:int -> duration:ns -> float
(** Throughput in megabits (10^6 bits) per second, the paper's unit. *)

val pp_ns : Format.formatter -> ns -> unit
(** Human-readable duration (e.g. ["1.500us"], ["2.3ms"]). *)
