(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through an explicit generator so
    that every experiment is reproducible from its seed.  The generator is
    SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny state, good
    statistical quality, and trivially splittable for independent streams. *)

type t
(** A mutable generator.  Not thread-safe; the simulator is single-threaded
    at the host level, so this is never an issue. *)

val create : int -> t
(** [create seed] makes a generator from a seed.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t].  Used to give
    each simulated thread or connection its own stream so adding a consumer
    does not perturb the draws seen by the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for service
    jitter in the simulated stack. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
