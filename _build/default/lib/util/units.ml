type ns = int

let ns x = x
let us x = int_of_float (x *. 1e3 +. 0.5)
let ms x = int_of_float (x *. 1e6 +. 0.5)
let sec x = int_of_float (x *. 1e9 +. 0.5)

let ns_to_sec t = float_of_int t /. 1e9

let mbits_per_sec ~bytes_transferred ~duration =
  if duration <= 0 then 0.0
  else float_of_int (bytes_transferred * 8) /. ns_to_sec duration /. 1e6

let pp_ns fmt t =
  let f = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.3fus" (f /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
