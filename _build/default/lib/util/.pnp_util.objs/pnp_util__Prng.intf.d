lib/util/prng.mli:
