lib/harness/config.ml: Arch Atomic_ctr Lock Pnp_engine Pnp_proto Pnp_util Printf Units
