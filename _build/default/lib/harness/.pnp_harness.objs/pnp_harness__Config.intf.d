lib/harness/config.mli: Pnp_engine Pnp_proto Pnp_util
