lib/harness/report.mli: Config Run
