lib/harness/report.ml: List Pnp_util Printf Run Stats String
