lib/harness/run.mli: Config Pnp_util
