open Pnp_util

type point = { procs : int; mean : float; ci90 : float }
type series = { label : string; points : point list }

let metric_series ~label ~procs ~seeds ~metric cfg_of_procs =
  let points =
    List.map
      (fun p ->
        let cfg = cfg_of_procs p in
        let results = Run.run_seeds cfg ~seeds in
        let s = Stats.summary (List.map metric results) in
        { procs = p; mean = s.Stats.mean; ci90 = s.Stats.ci90 })
      procs
  in
  { label; points }

let throughput_series ~label ~procs ~seeds cfg_of_procs =
  metric_series ~label ~procs ~seeds ~metric:(fun r -> r.Run.throughput_mbps) cfg_of_procs

let speedup s =
  match s.points with
  | [] -> s
  | first :: _ ->
    let base = first.mean in
    if base <= 0.0 then s
    else
      {
        s with
        points =
          List.map
            (fun p -> { p with mean = p.mean /. base; ci90 = p.ci90 /. base })
            s.points;
      }

let print_table ~title ~unit_label series =
  Printf.printf "\n== %s ==\n" title;
  let width = List.fold_left (fun w s -> max w (String.length s.label)) 14 series in
  let width = width + 2 in
  Printf.printf "%-6s" "procs";
  List.iter (fun s -> Printf.printf "%*s" width s.label) series;
  Printf.printf "   (%s)\n" unit_label;
  let all_procs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map (fun p -> p.procs) s.points) series)
  in
  List.iter
    (fun procs ->
      Printf.printf "%-6d" procs;
      List.iter
        (fun s ->
          match List.find_opt (fun p -> p.procs = procs) s.points with
          | Some p -> Printf.printf "%*s" width (Printf.sprintf "%.1f ±%.1f" p.mean p.ci90)
          | None -> Printf.printf "%*s" width "-")
        series;
      print_newline ())
    all_procs;
  flush stdout

let value_at s procs =
  match List.find_opt (fun p -> p.procs = procs) s.points with
  | Some p -> p.mean
  | None -> raise Not_found
